//! Markdown tables and JSON result files for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// A simple Markdown table builder.
///
/// # Examples
///
/// ```
/// let mut t = snia_bench::Table::new(vec!["size", "loss"]);
/// t.row(vec!["36".into(), "10.5".into()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| size | loss |"));
/// assert!(md.contains("| 36 | 10.5 |"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(s, "| {} |", r.join(" | "));
        }
        s
    }

    /// Prints the table to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n## {title}\n");
        print!("{}", self.to_markdown());
    }
}

/// Resolves the `results/` directory (workspace root), creating it if
/// needed. `SNIA_RESULTS_DIR` overrides the location.
pub fn results_dir() -> PathBuf {
    // The binaries run from the workspace; prefer ./results relative to
    // the cargo manifest dir's workspace root.
    let dir = std::env::var("SNIA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Serialises an experiment result to `results/<name>.json`.
///
/// # Panics
///
/// Panics if the file cannot be written (experiments should fail loudly).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialisable result");
    fs::write(&path, json).expect("cannot write result file");
    println!("\n[results written to {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        let md = t.to_markdown();
        assert_eq!(md.lines().count(), 4);
        assert!(md.lines().nth(1).unwrap().contains("---"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn write_json_creates_file() {
        std::env::set_var(
            "SNIA_RESULTS_DIR",
            std::env::temp_dir().join("snia_results_test"),
        );
        write_json("unit_test", &serde_json::json!({"x": 1}));
        let p = std::env::temp_dir().join("snia_results_test/unit_test.json");
        assert!(p.exists());
        std::fs::remove_file(p).ok();
        std::env::remove_var("SNIA_RESULTS_DIR");
    }
}

//! Criterion micro-benchmarks for the hot paths: the tensor/conv kernels
//! that dominate training time, and the image-rendering pipeline that
//! dominates dataset generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use snia_core::eval::auc;
use snia_core::flux_cnn::{FluxCnn, PoolKind};
use snia_dataset::{Dataset, DatasetConfig};
use snia_nn::init;
use snia_nn::layers::{BatchNorm2d, Conv2d, ConvBackend, MaxPool2d, Padding};
use snia_nn::{Layer, Mode, Tensor};
use snia_skysim::{render_cutout, CutoutSpec, Image, ObservingConditions, Psf};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::randn_tensor(&mut rng, vec![n, n], 1.0);
        let b = init::randn_tensor(&mut rng, vec![n, n], 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_forward_60x60");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    let mut conv = Conv2d::new(1, 10, 5, Padding::Same, &mut rng);
    let x = init::randn_tensor(&mut rng, vec![4, 1, 60, 60], 1.0);
    group.bench_function("batch4", |bch| {
        bch.iter(|| std::hint::black_box(conv.forward(&x, Mode::Eval)));
    });
    group.finish();
}

fn bench_conv_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_fwd_bwd_60x60");
    group.sample_size(15);
    let mut rng = StdRng::seed_from_u64(3);
    let mut conv = Conv2d::new(1, 10, 5, Padding::Same, &mut rng);
    let x = init::randn_tensor(&mut rng, vec![4, 1, 60, 60], 1.0);
    group.bench_function("batch4", |bch| {
        bch.iter(|| {
            let y = conv.forward(&x, Mode::Train);
            let g = Tensor::ones(y.shape().to_vec());
            std::hint::black_box(conv.backward(&g))
        });
    });
    group.finish();
}

fn bench_conv_backends(c: &mut Criterion) {
    // The paper's input geometry: 65×65 difference cutouts, 5×5 kernels.
    // Same layer, same data — only the backend differs, so the ratio is the
    // im2col/GEMM speedup reported in BENCH_conv.json and EXPERIMENTS.md.
    let mut rng = StdRng::seed_from_u64(6);
    let x = init::randn_tensor(&mut rng, vec![5, 1, 65, 65], 1.0);
    for (name, backend) in [
        ("im2col_gemm", ConvBackend::Im2colGemm),
        ("naive", ConvBackend::NaiveReference),
    ] {
        let mut conv = Conv2d::new(1, 5, 5, Padding::Valid, &mut rng);
        conv.set_backend(backend);
        let mut fwd = c.benchmark_group("conv_forward_65x65");
        fwd.sample_size(10);
        fwd.bench_function(name, |bch| {
            bch.iter(|| std::hint::black_box(conv.forward(&x, Mode::Eval)));
        });
        fwd.finish();
        let mut bwd = c.benchmark_group("conv_backward_65x65");
        bwd.sample_size(10);
        bwd.bench_function(name, |bch| {
            bch.iter(|| {
                let y = conv.forward(&x, Mode::Train);
                let g = Tensor::ones(y.shape().to_vec());
                std::hint::black_box(conv.backward(&g))
            });
        });
        bwd.finish();
    }
}

fn bench_pool_and_bn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let x = init::randn_tensor(&mut rng, vec![8, 10, 30, 30], 1.0);
    let mut pool = MaxPool2d::new(2);
    c.bench_function("maxpool2d_8x10x30x30", |bch| {
        bch.iter(|| std::hint::black_box(pool.forward(&x, Mode::Eval)));
    });
    let mut bn = BatchNorm2d::new(10);
    c.bench_function("batchnorm2d_8x10x30x30", |bch| {
        bch.iter(|| std::hint::black_box(bn.forward(&x, Mode::Train)));
    });
}

fn bench_flux_cnn_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("flux_cnn_forward");
    group.sample_size(10);
    for crop in [36usize, 60] {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cnn = FluxCnn::new(crop, PoolKind::Max, &mut rng);
        let x = init::randn_tensor(&mut rng, vec![4, 1, crop, crop], 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(crop), &crop, |bch, _| {
            bch.iter(|| std::hint::black_box(cnn.forward(&x, Mode::Eval)));
        });
    }
    group.finish();
}

fn bench_rendering(c: &mut Criterion) {
    let spec = CutoutSpec {
        galaxy_index: 1.0,
        galaxy_r_eff_px: 5.0,
        galaxy_axis_ratio: 0.7,
        galaxy_position_angle: 0.4,
        galaxy_flux: 800.0,
        galaxy_cx: 32.0,
        galaxy_cy: 32.0,
        sn_cx: 35.0,
        sn_cy: 30.0,
        sn_flux: 120.0,
        conditions: ObservingConditions::nominal(2),
        noise_seed: 7,
    };
    c.bench_function("render_cutout_65x65", |bch| {
        bch.iter(|| std::hint::black_box(render_cutout(&spec)));
    });
    let psf = Psf::Moffat {
        fwhm: 4.1,
        beta: 3.0,
    };
    c.bench_function("psf_point_source_65x65", |bch| {
        bch.iter(|| {
            let mut img = Image::zeros(65, 65);
            psf.add_point_source(&mut img, 32.3, 31.7, 100.0);
            std::hint::black_box(img)
        });
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generate");
    group.sample_size(10);
    group.bench_function("100_samples", |bch| {
        bch.iter(|| {
            std::hint::black_box(Dataset::generate(&DatasetConfig {
                n_samples: 100,
                catalog_size: 500,
                seed: 1,
            }))
        });
    });
    group.finish();
}

fn bench_telemetry_span(c: &mut Criterion) {
    // The contract that lets spans live in per-batch and per-cutout code:
    // with the default no-op sink a disabled span enter/exit is one relaxed
    // atomic load, well under 50 ns.
    snia_telemetry::set_enabled(false);
    c.bench_function("telemetry_span_disabled", |bch| {
        bch.iter(|| {
            let _g = snia_telemetry::span!("bench", i = 1);
            std::hint::black_box(())
        });
    });
    c.bench_function("telemetry_observe_disabled", |bch| {
        bch.iter(|| snia_telemetry::observe("bench.value", std::hint::black_box(1.5)));
    });
    // Enabled but sinkless: registry updates only, no I/O.
    snia_telemetry::set_enabled(true);
    c.bench_function("telemetry_span_enabled_no_sink", |bch| {
        bch.iter(|| {
            let _g = snia_telemetry::span!("bench", i = 1);
            std::hint::black_box(())
        });
    });
    c.bench_function("telemetry_observe_enabled", |bch| {
        bch.iter(|| snia_telemetry::observe("bench.value", std::hint::black_box(1.5)));
    });
    snia_telemetry::reset();
}

fn bench_auc(c: &mut Criterion) {
    let n = 10_000;
    let scores: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761u64) % 1000) as f64)
        .collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    c.bench_function("auc_10k", |bch| {
        bch.iter(|| std::hint::black_box(auc(&scores, &labels)));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv_forward,
    bench_conv_train_step,
    bench_conv_backends,
    bench_pool_and_bn,
    bench_flux_cnn_inference,
    bench_rendering,
    bench_dataset_generation,
    bench_telemetry_span,
    bench_auc
);
criterion_main!(benches);

//! End-to-end: the paper's full pipeline in miniature.
//!
//! 1. Pre-train the band-wise flux CNN (image pairs → magnitude).
//! 2. Pre-train the highway classifier (light-curve features → SNIa?).
//! 3. Assemble the joint model and fine-tune it end-to-end.
//! 4. Classify supernovae directly from telescope images.
//!
//! ```sh
//! cargo run --release --example end_to_end
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use snia_repro::core::classifier::LightCurveClassifier;
use snia_repro::core::eval::auc;
use snia_repro::core::flux_cnn::{FluxCnn, PoolKind};
use snia_repro::core::joint::JointModel;
use snia_repro::core::train::{
    feature_matrix, flux_pair_refs, joint_scores, train_classifier, train_flux_cnn, train_joint,
    ClassifierTrainConfig, FluxTrainConfig, JointExample,
};
use snia_repro::dataset::{split_indices, Dataset, DatasetConfig};

fn main() {
    let config = DatasetConfig {
        n_samples: 240,
        catalog_size: 1200,
        seed: 11,
    };
    println!("generating {} samples...", config.n_samples);
    let ds = Dataset::generate(&config);
    let (train, val, test) = split_indices(ds.len(), config.seed);
    let crop = 36; // small crop keeps the example quick

    // --- Stage 1: flux CNN ---
    println!("\n[1/3] pre-training the flux CNN...");
    let mut rng = StdRng::seed_from_u64(21);
    let mut cnn = FluxCnn::new(crop, PoolKind::Max, &mut rng);
    let train_refs = flux_pair_refs(&ds, &train, 2, 1);
    let val_refs = flux_pair_refs(&ds, &val, 2, 2);
    let h = train_flux_cnn(
        &mut cnn,
        &ds,
        &train_refs,
        &val_refs,
        &FluxTrainConfig {
            crop,
            epochs: 2,
            batch_size: 16,
            lr: 1e-3,
            pairs_per_sample: 2,
            augment: true,
            seed: 3,
            threads: 1,
        },
    );
    println!("  val MSE: {:.4} (normalised)", h.last().unwrap().val_loss);

    // --- Stage 2: classifier on ground-truth features ---
    println!("[2/3] pre-training the classifier...");
    let (xt, tt, _) = feature_matrix(&ds, &train, 1);
    let (xv, tv, _) = feature_matrix(&ds, &val, 1);
    let mut clf = LightCurveClassifier::new(1, 64, &mut rng);
    train_classifier(
        &mut clf,
        (&xt, &tt),
        (&xv, &tv),
        &ClassifierTrainConfig {
            epochs: 20,
            batch_size: 64,
            lr: 3e-3,
            seed: 4,
            threads: 1,
        },
    );

    // --- Stage 3: joint fine-tuning ---
    println!("[3/3] fine-tuning the joint model end-to-end...");
    let mut joint = JointModel::from_pretrained(cnn, clf);
    // epoch chosen by si/2, not si: labels alternate with the sample
    // index, so an si-based rotation would leak the class via the dates.
    let train_ex: Vec<JointExample> = train
        .iter()
        .map(|&si| JointExample {
            sample: si,
            epoch: (si / 2) % 4,
        })
        .collect();
    let val_ex: Vec<JointExample> = val
        .iter()
        .map(|&si| JointExample {
            sample: si,
            epoch: (si / 2) % 4,
        })
        .collect();
    let hist = train_joint(
        &mut joint,
        &ds,
        &train_ex,
        &val_ex,
        &ClassifierTrainConfig {
            epochs: 1,
            batch_size: 8,
            lr: 2e-4,
            seed: 5,
            threads: 1,
        },
    );
    println!(
        "  val acc after fine-tune: {:.3}",
        hist.last().unwrap().val_acc
    );

    // --- Classify the test set from images alone ---
    let test_ex: Vec<JointExample> = test
        .iter()
        .map(|&si| JointExample {
            sample: si,
            epoch: 0,
        })
        .collect();
    let (scores, labels) = joint_scores(&mut joint, &ds, &test_ex, 16);
    println!(
        "\njoint image->class test AUC: {:.3}",
        auc(&scores, &labels)
    );
    println!("(paper: 0.897 with 12,000 samples and full training budgets)");

    println!("\nper-sample predictions (first 8):");
    for (s, l) in scores.iter().zip(&labels).take(8) {
        println!(
            "  P(Ia) = {s:.3}   truth: {}",
            if *l { "Ia" } else { "non-Ia" }
        );
    }
}

//! Beyond the paper: 6-way supernova *type* classification
//! (Ia / Ib / Ic / IIL / IIN / IIP) from multi-epoch light-curve features,
//! using the softmax cross-entropy machinery in `snia-nn`.
//!
//! The paper frames the task as binary (Ia vs. rest) because cosmology
//! only needs the Ia sample; the same features support full typing, which
//! is what transient brokers actually publish.
//!
//! ```sh
//! cargo run --release --example type_classification
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use snia_repro::dataset::features::multi_epoch_input;
use snia_repro::dataset::{split_indices, Dataset, DatasetConfig};
use snia_repro::lightcurve::SnType;
use snia_repro::nn::layers::{Linear, Relu};
use snia_repro::nn::loss::softmax_cross_entropy;
use snia_repro::nn::optim::{Adam, Optimizer};
use snia_repro::nn::{Mode, Sequential, Tensor};

fn type_index(t: SnType) -> usize {
    SnType::ALL
        .iter()
        .position(|&x| x == t)
        .expect("known type")
}

fn matrix(ds: &Dataset, idx: &[usize]) -> (Tensor, Vec<usize>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for &i in idx {
        rows.extend(multi_epoch_input(&ds.samples[i], 4));
        labels.push(type_index(ds.samples[i].sn.sn_type));
    }
    (Tensor::from_vec(vec![idx.len(), 40], rows), labels)
}

fn main() {
    let ds = Dataset::generate(&DatasetConfig {
        n_samples: 900,
        catalog_size: 3000,
        seed: 314,
    });
    let (train, _, test) = split_indices(ds.len(), 314);
    let (xt, yt) = matrix(&ds, &train);
    let (xe, ye) = matrix(&ds, &test);
    println!(
        "6-way typing: {} train / {} test supernovae, 40-d multi-epoch features",
        yt.len(),
        ye.len()
    );

    let mut rng = StdRng::seed_from_u64(1);
    let mut net = Sequential::new();
    net.push(Linear::new(40, 96, &mut rng));
    net.push(Relu::new());
    net.push(Linear::new(96, 96, &mut rng));
    net.push(Relu::new());
    net.push(Linear::new(96, 6, &mut rng));

    let mut opt = Adam::new(2e-3);
    let n = yt.len();
    for epoch in 0..40 {
        // Full-batch is fine at this size.
        let logits = net.forward(&xt, Mode::Train);
        let (loss, grad) = softmax_cross_entropy(&logits, &yt);
        net.zero_grad();
        net.backward(&grad);
        opt.step(&mut net.params_mut());
        if epoch % 10 == 9 {
            println!("epoch {epoch}: train CE {loss:.3} ({n} examples)");
        }
    }

    // Confusion matrix on the test set.
    let logits = net.forward(&xe, Mode::Eval);
    let mut confusion = [[0usize; 6]; 6];
    let mut correct = 0;
    for (i, &truth) in ye.iter().enumerate() {
        let row = &logits.data()[i * 6..(i + 1) * 6];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(j, _)| j)
            .expect("non-empty");
        confusion[truth][pred] += 1;
        if pred == truth {
            correct += 1;
        }
    }
    println!(
        "\n6-way accuracy: {:.3} (chance on this mix ≈ 0.5 for Ia-majority guessing)",
        correct as f64 / ye.len() as f64
    );
    println!("\nconfusion matrix (rows = truth, cols = predicted):");
    print!("      ");
    for t in SnType::ALL {
        print!("{:>5}", t.label());
    }
    println!();
    for (ti, row) in confusion.iter().enumerate() {
        print!("{:>5} ", SnType::ALL[ti].label());
        for &c in row {
            print!("{c:>5}");
        }
        println!();
    }
    // Binary collapse: how good is the 6-way model at the paper's task?
    let mut ia_correct = 0;
    for (i, &truth) in ye.iter().enumerate() {
        let row = &logits.data()[i * 6..(i + 1) * 6];
        let pred_ia = row[0]
            >= *row[1..]
                .iter()
                .max_by(|a, b| a.partial_cmp(b).expect("finite"))
                .expect("non-empty");
        if pred_ia == (truth == 0) {
            ia_correct += 1;
        }
    }
    println!(
        "\ncollapsed Ia-vs-rest accuracy: {:.3}",
        ia_correct as f64 / ye.len() as f64
    );
}

//! Survey simulation: walk through the dataset generator itself — the
//! substrate replacing the COSMOS archive — and inspect one supernova's
//! campaign: host galaxy, light curve, schedule, and rendered stamps.
//!
//! ```sh
//! cargo run --release --example survey_simulation
//! ```

use snia_repro::dataset::{Dataset, DatasetConfig};
use snia_repro::lightcurve::Band;

fn main() {
    let ds = Dataset::generate(&DatasetConfig {
        n_samples: 50,
        catalog_size: 500,
        seed: 2024,
    });

    // Pick a bright, low-z Type Ia so everything is visible.
    let s = ds
        .samples
        .iter()
        .filter(|s| s.is_ia() && s.sn.redshift < 0.6)
        .min_by(|a, b| a.sn.redshift.partial_cmp(&b.sn.redshift).unwrap())
        .expect("a low-z Ia exists");

    println!("=== sample {} ===", s.id);
    println!("type      : {}", s.sn.sn_type);
    println!("redshift  : {:.3} (from host photo-z)", s.sn.redshift);
    println!("stretch   : {:.3}", s.sn.stretch);
    println!("colour    : {:+.3}", s.sn.color);
    println!("peak MJD  : {:.1}", s.sn.peak_mjd);
    println!(
        "host      : galaxy #{} — i = {:.2} mag, R_eff = {:.2}\", axis ratio {:.2}, Sérsic n = {:.1}",
        s.galaxy.id, s.galaxy.mag_i, s.galaxy.r_eff_arcsec, s.galaxy.axis_ratio, s.galaxy.sersic_index
    );
    println!(
        "SN offset : ({:+.1}, {:+.1}) px from the host centre",
        s.sn_dx, s.sn_dy
    );

    println!("\n--- observing campaign (5 bands x 4 epochs, <=2 bands/night) ---");
    println!(
        "reference epoch: MJD {:.1} (archival)",
        s.schedule.reference_mjd
    );
    let lc = s.light_curve();
    println!("\n  MJD      band  true mag   flux (counts)");
    for &(band, mjd) in &s.schedule.observations {
        let mag = lc.mag(band, mjd);
        println!(
            "  {:8.1}  {}    {:6.2}    {:8.1}",
            mjd,
            band,
            mag,
            lc.flux(band, mjd)
        );
    }

    // The light curve per band at its brightest observation.
    println!("\n--- peak visibility per band ---");
    for band in Band::ALL {
        let best = s
            .schedule
            .epochs_of(band)
            .into_iter()
            .map(|mjd| lc.mag(band, mjd))
            .fold(f64::INFINITY, f64::min);
        println!("  {band}: brightest observed mag {best:.2}");
    }

    // Render the brightest i-band pair and show the stamps.
    let (oi, _) = s
        .schedule
        .observations
        .iter()
        .enumerate()
        .filter(|(_, (b, _))| *b == Band::I)
        .min_by(|a, b| {
            lc.mag(a.1 .0, a.1 .1)
                .partial_cmp(&lc.mag(b.1 .0, b.1 .1))
                .unwrap()
        })
        .unwrap();
    let pair = s.flux_pair(oi);
    let diff = pair.observation.subtract(&pair.reference);
    println!("\n--- rendered stamps (i band, brightest epoch) ---");
    println!("reference (galaxy only):");
    print!("{}", pair.reference.to_ascii(32));
    println!("observation (galaxy + SN):");
    print!("{}", pair.observation.to_ascii(32));
    println!("difference (SN isolated, with subtraction residuals):");
    print!("{}", diff.to_ascii(32));
}

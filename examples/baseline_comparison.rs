//! Baseline comparison: run the Table 2 baselines on a small dataset and
//! compare against the proposed feature classifier.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use snia_repro::baselines::lochner::LochnerPipeline;
use snia_repro::baselines::poznanski::{epoch_observations, PoznanskiClassifier, PoznanskiConfig};
use snia_repro::baselines::random_forest::ForestConfig;
use snia_repro::core::classifier::LightCurveClassifier;
use snia_repro::core::eval::auc;
use snia_repro::core::train::{
    classifier_scores, feature_matrix, train_classifier, ClassifierTrainConfig,
};
use snia_repro::dataset::{split_indices, Dataset, DatasetConfig};

fn main() {
    let ds = Dataset::generate(&DatasetConfig {
        n_samples: 300,
        catalog_size: 1200,
        seed: 77,
    });
    let (train, val, test) = split_indices(ds.len(), 77);
    let test_labels: Vec<bool> = test.iter().map(|&i| ds.samples[i].is_ia()).collect();

    // --- Poznanski 2007: Bayesian single-epoch (epoch 0 of each sample) ---
    println!("Poznanski2007 (Bayesian, single epoch)...");
    let poz = PoznanskiClassifier::new(PoznanskiConfig::default());
    let scores_z: Vec<f64> = test
        .iter()
        .map(|&i| {
            let s = &ds.samples[i];
            poz.classify(&epoch_observations(s, 0), Some(s.sn.redshift))
        })
        .collect();
    let scores_noz: Vec<f64> = test
        .iter()
        .map(|&i| poz.classify(&epoch_observations(&ds.samples[i], 0), None))
        .collect();
    println!(
        "  with redshift   : AUC {:.3}",
        auc(&scores_z, &test_labels)
    );
    println!(
        "  without redshift: AUC {:.3}",
        auc(&scores_noz, &test_labels)
    );

    // --- Lochner 2016: template fits + random forest, 4 epochs ---
    println!("\nLochner2016 (template fits + random forest, 4 epochs)...");
    let pipe = LochnerPipeline::fit(
        &ds,
        &train,
        4,
        true,
        &ForestConfig {
            n_trees: 60,
            ..Default::default()
        },
    );
    let rf_scores = pipe.score(&ds, &test);
    println!(
        "  with redshift   : AUC {:.3}",
        auc(&rf_scores, &test_labels)
    );

    // --- Proposed: highway classifier on single-epoch features ---
    println!("\nProposed (single-epoch highway classifier)...");
    let (xt, tt, _) = feature_matrix(&ds, &train, 1);
    let (xv, tv, _) = feature_matrix(&ds, &val, 1);
    let (xe, _, labels_se) = feature_matrix(&ds, &test, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let mut clf = LightCurveClassifier::new(1, 100, &mut rng);
    train_classifier(
        &mut clf,
        (&xt, &tt),
        (&xv, &tv),
        &ClassifierTrainConfig {
            epochs: 25,
            batch_size: 64,
            lr: 3e-3,
            seed: 6,
            threads: 1,
        },
    );
    let scores = classifier_scores(&mut clf, &xe);
    println!("  without redshift: AUC {:.3}", auc(&scores, &labels_se));

    println!("\n(the table2 bench runs this comparison at full scale with all variants)");
}

//! Quickstart: generate a small dataset, train the single-epoch
//! light-curve classifier, and report its test AUC and ROC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use snia_repro::core::classifier::LightCurveClassifier;
use snia_repro::core::eval::{auc, roc_curve};
use snia_repro::core::train::{
    classifier_scores, feature_matrix, train_classifier, ClassifierTrainConfig,
};
use snia_repro::dataset::{split_indices, Dataset, DatasetConfig};

fn main() {
    // 1. A deterministic synthetic dataset: half Type Ia, half
    //    contaminants (Ib/Ic/IIL/IIN/IIP), each a supernova embedded in a
    //    host galaxy with a full 5-band x 4-epoch observing campaign.
    let config = DatasetConfig {
        n_samples: 600,
        catalog_size: 2000,
        seed: 42,
    };
    println!("generating {} samples...", config.n_samples);
    let ds = Dataset::generate(&config);
    let (train, val, test) = split_indices(ds.len(), config.seed);

    // 2. Single-epoch light-curve features: 5 magnitudes + 5 dates.
    //    Every sample contributes its 4 single-epoch subsets.
    let (x_train, t_train, _) = feature_matrix(&ds, &train, 1);
    let (x_val, t_val, _) = feature_matrix(&ds, &val, 1);
    let (x_test, _, labels) = feature_matrix(&ds, &test, 1);
    println!(
        "features: {} train / {} val / {} test examples",
        x_train.shape()[0],
        x_val.shape()[0],
        x_test.shape()[0]
    );

    // 3. The paper's classifier: FC -> 2 highway layers -> FC.
    let mut rng = StdRng::seed_from_u64(7);
    let mut clf = LightCurveClassifier::new(1, 100, &mut rng);
    println!("training ({} parameters)...", clf.num_parameters());
    let history = train_classifier(
        &mut clf,
        (&x_train, &t_train),
        (&x_val, &t_val),
        &ClassifierTrainConfig {
            epochs: 25,
            batch_size: 64,
            lr: 3e-3,
            seed: 1,
            threads: 1,
        },
    );
    let last = history.last().expect("non-empty history");
    println!(
        "final: train loss {:.3}, val loss {:.3}, val acc {:.3}",
        last.train_loss, last.val_loss, last.val_acc
    );

    // 4. Evaluate: AUC and a few ROC operating points.
    let scores = classifier_scores(&mut clf, &x_test);
    let a = auc(&scores, &labels);
    println!("\nsingle-epoch test AUC: {a:.3} (paper: 0.958 at full scale)");
    println!("\nROC operating points:");
    println!("  FPR    TPR");
    for p in roc_curve(&scores, &labels).iter().step_by(40) {
        println!("  {:.3}  {:.3}", p.fpr, p.tpr);
    }
}

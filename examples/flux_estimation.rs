//! Flux estimation: train the paper's band-wise CNN to regress supernova
//! magnitudes from (reference, observation) difference images, then
//! inspect its per-magnitude calibration — a miniature of Figure 8.
//!
//! ```sh
//! cargo run --release --example flux_estimation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use snia_repro::core::flux_cnn::{FluxCnn, PoolKind};
use snia_repro::core::train::{flux_pair_refs, flux_predictions, train_flux_cnn, FluxTrainConfig};
use snia_repro::dataset::{split_indices, Dataset, DatasetConfig};

fn main() {
    let config = DatasetConfig {
        n_samples: 300,
        catalog_size: 1500,
        seed: 9,
    };
    println!("generating {} samples...", config.n_samples);
    let ds = Dataset::generate(&config);
    let (train, val, test) = split_indices(ds.len(), config.seed);

    // Each sample contributes a few (reference, observation) pairs; the
    // images are rendered on demand from the generative specs.
    let train_refs = flux_pair_refs(&ds, &train, 3, 1);
    let val_refs = flux_pair_refs(&ds, &val, 2, 2);
    let test_refs = flux_pair_refs(&ds, &test, 4, 3);
    println!(
        "pairs: {} train / {} val / {} test",
        train_refs.len(),
        val_refs.len(),
        test_refs.len()
    );

    // The paper's CNN: 3 x [5x5 conv -> batch-norm -> PReLU -> max-pool],
    // channels 10/20/30, then a 3-layer FC head. Crop 44 keeps this
    // example fast; Table 1 sweeps 36..65.
    let crop = 44;
    let mut rng = StdRng::seed_from_u64(3);
    let mut cnn = FluxCnn::new(crop, PoolKind::Max, &mut rng);
    println!("\n{}", cnn.summary());

    let history = train_flux_cnn(
        &mut cnn,
        &ds,
        &train_refs,
        &val_refs,
        &FluxTrainConfig {
            crop,
            epochs: 3,
            batch_size: 16,
            lr: 1e-3,
            pairs_per_sample: 3,
            augment: true,
            seed: 4,
            threads: 1,
        },
    );
    for h in &history {
        println!(
            "epoch {}: train {:.4}, val {:.4} (normalised MSE)",
            h.epoch, h.train_loss, h.val_loss
        );
    }

    // Calibration on detectable test pairs.
    let preds = flux_predictions(&mut cnn, &ds, &test_refs, crop, 32);
    let detectable: Vec<(f64, f64)> = preds.into_iter().filter(|(t, _)| *t < 28.0).collect();
    let mae = detectable.iter().map(|(t, e)| (t - e).abs()).sum::<f64>() / detectable.len() as f64;
    println!(
        "\ntest: {} detectable pairs, mean |error| = {mae:.3} mag",
        detectable.len()
    );
    println!("\n  true    estimated");
    for (t, e) in detectable.iter().take(12) {
        println!("  {t:.2}   {e:.2}");
    }
}

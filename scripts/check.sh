#!/bin/bash
# Pre-merge gate: formatting, lints, release build, full test suite.
# Usage: scripts/check.sh [--quick]
#   --quick   skip the release build (CI runs it as a separate job)
set -eu
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "usage: scripts/check.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

if [ "$quick" -eq 0 ]; then
    echo "== cargo build --release =="
    cargo build --release --workspace
fi

echo "== cargo test =="
cargo test --workspace -q

# The golden snapshots live in the root package's integration tests, which
# --workspace already runs; name them explicitly so a default-members
# change can never silently drop the metric/bit-identity pins.
echo "== golden suite =="
cargo test -q --test golden

# Likewise the property suite: the preprocessing-correctness pins added
# with the render cache (mag<->target round-trip/saturation, crop-centre
# survival, schedule invariants) must run even if default-members shift.
echo "== property suite =="
cargo test -q --test properties

echo "ALL CHECKS PASSED"

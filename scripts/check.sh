#!/bin/bash
# Pre-merge gate: formatting, lints, full test suite.
# Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "ALL CHECKS PASSED"

#!/bin/bash
# Regenerates every table/figure/extension result into results/.
# Honours SNIA_FULL / SNIA_SCALE / SNIA_SEED (see snia_core::config).
set -u
cd "$(dirname "$0")/.."
mkdir -p results/logs
for exp in fig3 fig4 fig5 table1 fig8 fig9 fig10 table2 ablate bogus fig11 fig12 photometry throughput followup; do
  echo "=== $exp start $(date +%H:%M:%S) ==="
  cargo run --release -p snia-bench --bin "$exp" > "results/logs/$exp.log" 2>&1
  echo "=== $exp done  $(date +%H:%M:%S) exit=$? ==="
done
echo SUITE_COMPLETE
